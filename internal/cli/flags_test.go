package cli

import (
	"strings"
	"testing"
)

func TestCheckWorkers(t *testing.T) {
	if err := CheckWorkers(1); err != nil {
		t.Fatal(err)
	}
	if err := CheckWorkers(0); err == nil {
		t.Fatal("0 workers accepted")
	}
	if err := CheckWorkers(-3); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestCheckRefine(t *testing.T) {
	cases := []struct {
		name                  string
		adaptive              bool
		budget                int
		budgetSet, persistent bool
		wantErr               string
	}{
		{name: "off", budget: 16},
		{name: "budget without adaptive", budget: 8, budgetSet: true,
			wantErr: "-refine-budget needs -adaptive"},
		{name: "adaptive with manifest", adaptive: true, budget: 16, persistent: true},
		{name: "adaptive explicit budget", adaptive: true, budget: 4, budgetSet: true, persistent: true},
		{name: "adaptive without journal", adaptive: true, budget: 16,
			wantErr: "pass -manifest DIR or -coordinator URL"},
		{name: "zero budget", adaptive: true, budget: 0, budgetSet: true, persistent: true,
			wantErr: "must be positive"},
		{name: "negative budget", adaptive: true, budget: -2, budgetSet: true, persistent: true,
			wantErr: "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckRefine(tc.adaptive, tc.budget, tc.budgetSet, tc.persistent)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}
