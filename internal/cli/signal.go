// Package cli holds the small plumbing shared by the command
// front-ends; the commands' substance lives in the public nocsim API
// and the internal sweep/report generators.
package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled by the first SIGINT
// (Ctrl-C) or SIGTERM (the fleet supervisor's shutdown signal). The
// cancellation reaches the simulation engine loop, so in-flight runs
// abort promptly, and the daemons' serve loops, which quiesce and flush
// their journals before exiting. After the first signal the default
// disposition is restored, so a second one kills a stalled process the
// usual way. The returned stop function releases the signal handler;
// defer it in main.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
