// Package cli holds the small plumbing shared by the command
// front-ends; the commands' substance lives in the public nocsim API
// and the internal sweep/report generators.
package cli

import (
	"context"
	"os"
	"os/signal"
)

// SignalContext returns a context cancelled by the first interrupt
// (Ctrl-C). The cancellation reaches the simulation engine loop, so
// in-flight runs abort promptly. After the first interrupt the default
// signal disposition is restored, so a second interrupt kills a stalled
// process the usual way. The returned stop function releases the signal
// handler; defer it in main.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
