package volt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperAnchorsReproduced(t *testing.T) {
	m := New()
	if got := m.FrequencyAt(VMin); math.Abs(got-FMin)/FMin > 1e-9 {
		t.Errorf("F(0.56V) = %g, want 333 MHz", got)
	}
	if got := m.FrequencyAt(VMax); math.Abs(got-FMax)/FMax > 1e-9 {
		t.Errorf("F(0.90V) = %g, want 1 GHz", got)
	}
}

func TestVoltageForAnchors(t *testing.T) {
	m := New()
	if got := m.VoltageFor(FMin); math.Abs(got-VMin) > 1e-6 {
		t.Errorf("VoltageFor(333MHz) = %g, want 0.56", got)
	}
	if got := m.VoltageFor(FMax); math.Abs(got-VMax) > 1e-6 {
		t.Errorf("VoltageFor(1GHz) = %g, want 0.90", got)
	}
}

func TestFrequencyMonotonic(t *testing.T) {
	m := New()
	prev := -1.0
	for v := 0.4; v <= 1.2; v += 0.01 {
		f := m.FrequencyAt(v)
		if f < prev {
			t.Fatalf("F not monotone at %g V", v)
		}
		prev = f
	}
}

func TestFrequencyBelowThresholdZero(t *testing.T) {
	m := New()
	if got := m.FrequencyAt(0.1); got != 0 {
		t.Errorf("F(0.1V) = %g, want 0", got)
	}
	if got := m.FrequencyAt(m.Vt()); got != 0 {
		t.Errorf("F(Vt) = %g, want 0", got)
	}
}

func TestInverseRoundTripQuick(t *testing.T) {
	m := New()
	f := func(raw uint16) bool {
		// Frequencies across the DVFS range and slightly beyond.
		freq := FMin + (FMax*1.2-FMin)*float64(raw)/65535
		v := m.VoltageFor(freq)
		back := m.FrequencyAt(v)
		return math.Abs(back-freq)/freq < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVoltageForZeroOrNegative(t *testing.T) {
	m := New()
	if got := m.VoltageFor(0); got != m.Vt() {
		t.Errorf("VoltageFor(0) = %g, want Vt", got)
	}
	if got := m.VoltageFor(-5); got != m.Vt() {
		t.Errorf("VoltageFor(-5) = %g, want Vt", got)
	}
}

func TestAlphaInPlausibleRange(t *testing.T) {
	// Velocity-saturated deep-submicron devices have alpha in (1, 2).
	m := New()
	if a := m.Alpha(); a <= 1 || a >= 2 {
		t.Errorf("alpha = %g, want in (1, 2)", a)
	}
}

func TestNewAlphaPowerErrors(t *testing.T) {
	tests := []struct {
		name               string
		vt, v1, f1, v2, f2 float64
	}{
		{"anchor below threshold", 0.6, 0.56, FMin, 0.9, FMax},
		{"reversed voltages", 0.3, 0.9, FMin, 0.56, FMax},
		{"reversed freqs", 0.3, 0.56, FMax, 0.9, FMin},
		{"zero f1", 0.3, 0.56, 0, 0.9, FMax},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewAlphaPower(tc.vt, tc.v1, tc.f1, tc.v2, tc.f2); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCurveEndpointsAndLength(t *testing.T) {
	m := New()
	volts, freqs := m.Curve(VMin, VMax, 8)
	if len(volts) != 8 || len(freqs) != 8 {
		t.Fatalf("curve lengths %d/%d, want 8", len(volts), len(freqs))
	}
	if volts[0] != VMin || volts[7] != VMax {
		t.Errorf("curve voltage endpoints %g..%g", volts[0], volts[7])
	}
	if math.Abs(freqs[0]-FMin)/FMin > 1e-9 || math.Abs(freqs[7]-FMax)/FMax > 1e-9 {
		t.Errorf("curve frequency endpoints %g..%g", freqs[0], freqs[7])
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] <= freqs[i-1] {
			t.Fatalf("curve not strictly increasing at %d", i)
		}
	}
}

func TestCurveMinimumPoints(t *testing.T) {
	m := New()
	volts, _ := m.Curve(VMin, VMax, 1)
	if len(volts) != 2 {
		t.Errorf("Curve with n<2 returned %d points, want 2", len(volts))
	}
}

func TestQuantize(t *testing.T) {
	m := New()
	l, err := m.Quantize(FMin, FMax, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Freqs) != 5 {
		t.Fatalf("levels = %d, want 5", len(l.Freqs))
	}
	if l.Freqs[0] != FMin || l.Freqs[4] != FMax {
		t.Errorf("level endpoints %g..%g", l.Freqs[0], l.Freqs[4])
	}
	for i, f := range l.Freqs {
		if math.Abs(m.FrequencyAt(l.Volts[i])-f)/f > 1e-6 {
			t.Errorf("level %d voltage inconsistent", i)
		}
	}
}

func TestQuantizeErrors(t *testing.T) {
	m := New()
	if _, err := m.Quantize(FMin, FMax, 1); err == nil {
		t.Error("accepted 1 level")
	}
	if _, err := m.Quantize(FMax, FMin, 4); err == nil {
		t.Error("accepted reversed range")
	}
	if _, err := m.Quantize(0, FMax, 4); err == nil {
		t.Error("accepted zero lower bound")
	}
}

func TestSnapRoundsUp(t *testing.T) {
	m := New()
	l, err := m.Quantize(FMin, FMax, 4) // 333, 555.3, 777.7, 1000 MHz
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Snap(400e6); got != l.Freqs[1] {
		t.Errorf("Snap(400MHz) = %g, want %g", got, l.Freqs[1])
	}
	if got := l.Snap(FMin); got != l.Freqs[0] {
		t.Errorf("Snap(FMin) = %g, want %g", got, l.Freqs[0])
	}
	if got := l.Snap(2e9); got != l.Freqs[3] {
		t.Errorf("Snap above range = %g, want top level", got)
	}
}

func TestSnapNeverBelowRequest(t *testing.T) {
	m := New()
	l, err := m.Quantize(FMin, FMax, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		req := FMin + (FMax-FMin)*float64(raw)/65535
		return l.Snap(req) >= req-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
