package volt_test

import (
	"fmt"

	"repro/internal/volt"
)

// Example reproduces the paper's two published operating points and the
// mid-range voltage the DVFS controller would command.
func Example() {
	m := volt.New()
	fmt.Printf("F(0.56 V) = %.0f MHz\n", m.FrequencyAt(0.56)/1e6)
	fmt.Printf("F(0.90 V) = %.0f MHz\n", m.FrequencyAt(0.90)/1e6)
	fmt.Printf("V(666 MHz) = %.3f V\n", m.VoltageFor(666e6))
	// Output:
	// F(0.56 V) = 333 MHz
	// F(0.90 V) = 1000 MHz
	// V(666 MHz) = 0.731 V
}

// ExampleModel_Quantize builds a 4-level DVFS operating-point table.
func ExampleModel_Quantize() {
	m := volt.New()
	levels, err := m.Quantize(volt.FMin, volt.FMax, 4)
	if err != nil {
		panic(err)
	}
	for i, f := range levels.Freqs {
		fmt.Printf("level %d: %.1f MHz @ %.3f V\n", i, f/1e6, levels.Volts[i])
	}
	fmt.Printf("snap(400 MHz) -> %.1f MHz\n", levels.Snap(400e6)/1e6)
	// Output:
	// level 0: 333.0 MHz @ 0.560 V
	// level 1: 555.3 MHz @ 0.675 V
	// level 2: 777.7 MHz @ 0.787 V
	// level 3: 1000.0 MHz @ 0.900 V
	// snap(400 MHz) -> 555.3 MHz
}
