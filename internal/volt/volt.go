// Package volt models the voltage-frequency relationship of the paper's
// 28-nm FDSOI router (Fig. 5): the maximum clock frequency the synthesized
// router sustains at a given supply voltage, and its inverse, the minimum
// voltage required for a target frequency.
//
// The paper extracted the curve from transistor-level (Eldo) simulation of
// the post-synthesis netlist. Lacking the proprietary library, this package
// substitutes the alpha-power-law MOSFET model
//
//	F(V) = K * (V - Vt)^alpha / V
//
// fitted to the two operating points the paper publishes: 333 MHz at
// 0.56 V and 1 GHz at 0.90 V. The resulting curve has the same mildly
// super-linear shape as Fig. 5 and exactly reproduces the published
// endpoints; every DVFS result in the paper depends on the curve only
// through those endpoints and monotonicity.
package volt

import (
	"errors"
	"fmt"
	"math"
)

// Paper operating range (Sec. IV-A).
const (
	// FMin is the minimum network clock frequency, 333 MHz.
	FMin = 333e6
	// FMax is the maximum network clock frequency, 1 GHz.
	FMax = 1e9
	// VMin is the supply voltage at FMin, 0.56 V.
	VMin = 0.56
	// VMax is the supply voltage at FMax, 0.90 V.
	VMax = 0.90
)

// Model maps supply voltage to maximum clock frequency and back. Create it
// with New (paper fit) or NewAlphaPower (custom fit).
type Model struct {
	k     float64 // curve scale, Hz*V/(V^alpha)
	vt    float64 // threshold voltage, V
	alpha float64 // velocity-saturation exponent
}

// New returns the model fitted to the paper's two published operating
// points (333 MHz @ 0.56 V, 1 GHz @ 0.90 V) with a 28-nm-plausible
// threshold voltage of 0.32 V.
func New() Model {
	m, err := NewAlphaPower(0.32, VMin, FMin, VMax, FMax)
	if err != nil {
		// The paper anchors are compile-time constants; failure here is a
		// programming error.
		panic(err)
	}
	return m
}

// NewAlphaPower fits F(V) = K (V-Vt)^alpha / V through the two anchor
// points (v1, f1) and (v2, f2). It returns an error when the anchors are
// degenerate or below threshold.
func NewAlphaPower(vt, v1, f1, v2, f2 float64) (Model, error) {
	if v1 <= vt || v2 <= vt {
		return Model{}, fmt.Errorf("volt: anchor voltages %.3g/%.3g not above threshold %.3g", v1, v2, vt)
	}
	if v1 >= v2 || f1 >= f2 || f1 <= 0 {
		return Model{}, errors.New("volt: anchors must satisfy v1<v2, 0<f1<f2")
	}
	// Solve (f2 v2)/(f1 v1) = ((v2-vt)/(v1-vt))^alpha for alpha.
	ratio := (f2 * v2) / (f1 * v1)
	base := (v2 - vt) / (v1 - vt)
	alpha := math.Log(ratio) / math.Log(base)
	k := f2 * v2 / math.Pow(v2-vt, alpha)
	return Model{k: k, vt: vt, alpha: alpha}, nil
}

// Vt returns the fitted threshold voltage.
func (m Model) Vt() float64 { return m.vt }

// Alpha returns the fitted alpha-power exponent.
func (m Model) Alpha() float64 { return m.alpha }

// FrequencyAt returns the maximum clock frequency (Hz) sustainable at
// supply voltage v. Voltages at or below threshold yield 0.
func (m Model) FrequencyAt(v float64) float64 {
	if v <= m.vt {
		return 0
	}
	return m.k * math.Pow(v-m.vt, m.alpha) / v
}

// VoltageFor returns the minimum supply voltage at which the router
// sustains frequency f (Hz). It inverts FrequencyAt numerically by
// bisection; the curve is strictly increasing above threshold.
func (m Model) VoltageFor(f float64) float64 {
	if f <= 0 {
		return m.vt
	}
	lo, hi := m.vt+1e-6, 2.0
	for m.FrequencyAt(hi) < f {
		hi *= 2
		if hi > 64 {
			return math.NaN()
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m.FrequencyAt(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Curve samples the model at n evenly spaced voltages across [vLo, vHi]
// inclusive, returning parallel voltage and frequency slices. It is the
// generator behind the Fig. 5 reproduction.
func (m Model) Curve(vLo, vHi float64, n int) (volts, freqs []float64) {
	if n < 2 {
		n = 2
	}
	volts = make([]float64, n)
	freqs = make([]float64, n)
	for i := 0; i < n; i++ {
		v := vLo + (vHi-vLo)*float64(i)/float64(n-1)
		volts[i] = v
		freqs[i] = m.FrequencyAt(v)
	}
	return volts, freqs
}

// Levels describes a discrete DVFS operating-point table: frequencies and
// the matching minimum voltages, sorted ascending. The paper's footnote 2
// notes its results remain valid with discrete levels; Levels supports
// that ablation.
type Levels struct {
	Freqs []float64
	Volts []float64
}

// Quantize builds a table of n evenly spaced frequency levels spanning
// [fLo, fHi], with voltages from the model.
func (m Model) Quantize(fLo, fHi float64, n int) (Levels, error) {
	if n < 2 {
		return Levels{}, errors.New("volt: need at least 2 levels")
	}
	if fLo <= 0 || fLo >= fHi {
		return Levels{}, fmt.Errorf("volt: bad level range [%g, %g]", fLo, fHi)
	}
	l := Levels{Freqs: make([]float64, n), Volts: make([]float64, n)}
	for i := 0; i < n; i++ {
		f := fLo + (fHi-fLo)*float64(i)/float64(n-1)
		l.Freqs[i] = f
		l.Volts[i] = m.VoltageFor(f)
	}
	return l, nil
}

// Snap returns the lowest level frequency >= f, or the top level when f
// exceeds the table. Snapping up preserves the controllers' guarantees
// (the network never runs slower than requested).
func (l Levels) Snap(f float64) float64 {
	for _, lf := range l.Freqs {
		if lf >= f-1e-6 {
			return lf
		}
	}
	return l.Freqs[len(l.Freqs)-1]
}
