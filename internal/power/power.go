// Package power estimates NoC power from cycle-accurate activity traces,
// substituting for the paper's post-synthesis flow (Synopsys Design
// Compiler netlist + simulated switching activity imported into the
// Synopsys power estimator on a 28-nm FDSOI low-power library, Sec. IV-A).
//
// The model is event-energy based:
//
//	P = Σ_events E_event·(V/Vnom)² / T            (switching activity)
//	  + N_routers·E_clk·(V/Vnom)²·F               (clock tree and idle pipeline)
//	  + N_routers·P_leak·(V/Vnom)³                (leakage)
//
// Dynamic energy scales with V² and, per unit time, with F; leakage grows
// super-linearly in V (cubic is a standard compact approximation across a
// 0.56-0.9 V window). Per-event energies are calibrated so the paper's
// baseline network (5x5 mesh, 8 VCs, 20-flit packets, 1 GHz @ 0.9 V)
// lands in the Fig. 6 envelope: ≈50 mW near zero load and ≈230 mW at 0.4
// flits/node/cycle. All of the paper's findings are power *ratios*
// (RMSD vs DMSD vs No-DVFS), which depend on the V²F scaling and the
// activity counts, not on the absolute calibration.
package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/noc"
)

// Model holds per-event energies (joules at nominal voltage) and static
// parameters. Construct with Default28nm or fill fields explicitly.
type Model struct {
	// VNom is the nominal (maximum) supply voltage at which the event
	// energies are specified, in volts.
	VNom float64

	// Per-event energies in joules at VNom.
	EBufWrite float64 // one flit written into an input buffer
	EBufRead  float64 // one flit read from an input buffer
	EXbar     float64 // one flit crossing the switch
	EVCAlloc  float64 // one VC allocation grant
	ESAAlloc  float64 // one switch allocation grant
	ELink     float64 // one flit on a router-to-router link
	EIOLink   float64 // one flit on an injection or ejection link

	// EClkCycle is the clock-tree plus idle-pipeline energy per router per
	// cycle at VNom, in joules.
	EClkCycle float64

	// PLeakRouter is the per-router leakage power at VNom, in watts.
	PLeakRouter float64

	// LeakExp is the exponent of the (V/VNom)^LeakExp leakage scaling.
	LeakExp float64
}

// Default28nm returns the calibrated 28-nm FDSOI model (128-bit flits).
// Event energies are in the low-picojoule range typical for a 28-nm VC
// router; see the package comment for the calibration targets.
func Default28nm() Model {
	return Model{
		VNom:        0.90,
		EBufWrite:   1.1e-12,
		EBufRead:    0.7e-12,
		EXbar:       1.2e-12,
		EVCAlloc:    0.08e-12,
		ESAAlloc:    0.06e-12,
		ELink:       0.9e-12,
		EIOLink:     0.45e-12,
		EClkCycle:   1.5e-12,
		PLeakRouter: 0.5e-3,
		LeakExp:     3,
	}
}

// Validate reports whether the model parameters are physical.
func (m Model) Validate() error {
	var errs []error
	if m.VNom <= 0 {
		errs = append(errs, fmt.Errorf("nominal voltage %g must be positive", m.VNom))
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"EBufWrite", m.EBufWrite}, {"EBufRead", m.EBufRead}, {"EXbar", m.EXbar},
		{"EVCAlloc", m.EVCAlloc}, {"ESAAlloc", m.ESAAlloc}, {"ELink", m.ELink},
		{"EIOLink", m.EIOLink}, {"EClkCycle", m.EClkCycle}, {"PLeakRouter", m.PLeakRouter},
	} {
		if e.v < 0 {
			errs = append(errs, fmt.Errorf("%s %g must be non-negative", e.name, e.v))
		}
	}
	if m.LeakExp < 1 || m.LeakExp > 5 {
		errs = append(errs, fmt.Errorf("leakage exponent %g outside [1, 5]", m.LeakExp))
	}
	return errors.Join(errs...)
}

// vScale2 returns the dynamic-energy voltage scaling (V/VNom)².
func (m Model) vScale2(v float64) float64 {
	s := v / m.VNom
	return s * s
}

// ActivityEnergy returns the switching energy, in joules, of the event
// counts in a at supply voltage v. Injection and ejection flits traverse
// short PE links (EIOLink); router-to-router flits pay ELink.
func (m Model) ActivityEnergy(a noc.RouterActivity, v float64) float64 {
	e := float64(a.BufWrites)*m.EBufWrite +
		float64(a.BufReads)*m.EBufRead +
		float64(a.XbarTraversals)*m.EXbar +
		float64(a.VCAllocs)*m.EVCAlloc +
		float64(a.SAAllocs)*m.ESAAlloc +
		float64(a.LinkFlits)*m.ELink +
		float64(a.InjectFlits+a.EjectFlits)*m.EIOLink
	return e * m.vScale2(v)
}

// ClockEnergy returns the clock-tree energy, in joules, of routers running
// for cycles cycles at supply voltage v.
func (m Model) ClockEnergy(routers int, cycles int64, v float64) float64 {
	return float64(routers) * float64(cycles) * m.EClkCycle * m.vScale2(v)
}

// LeakagePower returns the total leakage power, in watts, of routers at
// supply voltage v.
func (m Model) LeakagePower(routers int, v float64) float64 {
	s := v / m.VNom
	var scale float64
	// Multiplication fast path for the default cubic.
	if m.LeakExp == 3 {
		scale = s * s * s
	} else {
		scale = math.Pow(s, m.LeakExp)
	}
	return float64(routers) * m.PLeakRouter * scale
}

// Integrator accumulates energy over a simulation with time-varying
// voltage and frequency. Call Slice once per accounting interval (e.g.
// per DVFS control period) with the activity delta of that interval.
type Integrator struct {
	model   Model
	routers int

	energyJ float64
	timeS   float64

	// Per-component energy, for breakdown reporting.
	switchJ float64
	clockJ  float64
	leakJ   float64
}

// NewIntegrator builds an integrator for a network with the given number
// of routers.
func NewIntegrator(model Model, routers int) (*Integrator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if routers < 1 {
		return nil, fmt.Errorf("power: %d routers", routers)
	}
	return &Integrator{model: model, routers: routers}, nil
}

// Slice accounts one interval of the simulation: activity delta a, elapsed
// network cycles, supply voltage v, and elapsed wall time seconds (cycles
// divided by the interval's network frequency).
func (i *Integrator) Slice(a noc.RouterActivity, cycles int64, v, seconds float64) {
	sw := i.model.ActivityEnergy(a, v)
	ck := i.model.ClockEnergy(i.routers, cycles, v)
	lk := i.model.LeakagePower(i.routers, v) * seconds
	i.switchJ += sw
	i.clockJ += ck
	i.leakJ += lk
	i.energyJ += sw + ck + lk
	i.timeS += seconds
}

// Components returns the cumulative per-component energies in joules:
// switching, clock, leakage. Callers snapshot them to compute windowed
// breakdowns.
func (i *Integrator) Components() (switchJ, clockJ, leakJ float64) {
	return i.switchJ, i.clockJ, i.leakJ
}

// BreakdownW returns the time-averaged per-component power in watts.
func (i *Integrator) BreakdownW() Breakdown {
	if i.timeS == 0 {
		return Breakdown{}
	}
	return Breakdown{
		SwitchingW: i.switchJ / i.timeS,
		ClockW:     i.clockJ / i.timeS,
		LeakageW:   i.leakJ / i.timeS,
	}
}

// EnergyJ returns the total accumulated energy in joules.
func (i *Integrator) EnergyJ() float64 { return i.energyJ }

// TimeS returns the total accounted time in seconds.
func (i *Integrator) TimeS() float64 { return i.timeS }

// AvgPowerW returns the average power in watts (0 before any Slice).
func (i *Integrator) AvgPowerW() float64 {
	if i.timeS == 0 {
		return 0
	}
	return i.energyJ / i.timeS
}

// Breakdown decomposes the power of a single steady-state operating point
// into its components, in watts; a reporting aid for the ablation benches.
type Breakdown struct {
	SwitchingW float64
	ClockW     float64
	LeakageW   float64
}

// Total returns the summed power in watts.
func (b Breakdown) Total() float64 { return b.SwitchingW + b.ClockW + b.LeakageW }

// SteadyState computes the power breakdown of a steady operating point:
// activity a accumulated over cycles network cycles at frequency f (Hz)
// and voltage v.
func (m Model) SteadyState(a noc.RouterActivity, routers int, cycles int64, f, v float64) Breakdown {
	if cycles == 0 || f == 0 {
		return Breakdown{LeakageW: m.LeakagePower(routers, v)}
	}
	seconds := float64(cycles) / f
	return Breakdown{
		SwitchingW: m.ActivityEnergy(a, v) / seconds,
		ClockW:     m.ClockEnergy(routers, cycles, v) / seconds,
		LeakageW:   m.LeakagePower(routers, v),
	}
}
