package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func TestDefaultModelValid(t *testing.T) {
	if err := Default28nm().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	m := Default28nm()
	m.VNom = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero nominal voltage")
	}
	m = Default28nm()
	m.EXbar = -1
	if err := m.Validate(); err == nil {
		t.Error("accepted negative energy")
	}
	m = Default28nm()
	m.LeakExp = 9
	if err := m.Validate(); err == nil {
		t.Error("accepted huge leakage exponent")
	}
}

func TestActivityEnergyScalesWithVSquared(t *testing.T) {
	m := Default28nm()
	a := noc.RouterActivity{BufWrites: 1000, BufReads: 1000, XbarTraversals: 1000, LinkFlits: 500}
	eFull := m.ActivityEnergy(a, 0.9)
	eHalfV := m.ActivityEnergy(a, 0.45)
	if got, want := eHalfV/eFull, 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("V/2 energy ratio = %g, want 0.25", got)
	}
}

func TestActivityEnergyLinearInCountsQuick(t *testing.T) {
	m := Default28nm()
	f := func(w, r uint16) bool {
		a := noc.RouterActivity{BufWrites: int64(w), BufReads: int64(r)}
		b := noc.RouterActivity{BufWrites: 2 * int64(w), BufReads: 2 * int64(r)}
		ea := m.ActivityEnergy(a, 0.9)
		eb := m.ActivityEnergy(b, 0.9)
		return math.Abs(eb-2*ea) < 1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockEnergyScalesWithVSquaredAndCycles(t *testing.T) {
	m := Default28nm()
	e1 := m.ClockEnergy(25, 1000, 0.9)
	e2 := m.ClockEnergy(25, 2000, 0.9)
	if math.Abs(e2-2*e1) > 1e-18 {
		t.Error("clock energy not linear in cycles")
	}
	e3 := m.ClockEnergy(25, 1000, 0.45)
	if got := e3 / e1; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("clock V scaling = %g, want 0.25", got)
	}
	// At fixed wall time, halving F halves cycles, so clock *power*
	// scales with V²F as required.
}

func TestLeakageScaling(t *testing.T) {
	m := Default28nm()
	pFull := m.LeakagePower(25, 0.9)
	if math.Abs(pFull-25*0.5e-3) > 1e-12 {
		t.Errorf("leakage at VNom = %g, want 12.5 mW", pFull)
	}
	pLow := m.LeakagePower(25, 0.56)
	want := pFull * math.Pow(0.56/0.9, 3)
	if math.Abs(pLow-want) > 1e-12 {
		t.Errorf("leakage at 0.56 V = %g, want %g", pLow, want)
	}
	// Non-default exponent path.
	m.LeakExp = 2
	p2 := m.LeakagePower(25, 0.45)
	if math.Abs(p2-pFull*0.25) > 1e-12 {
		t.Errorf("quadratic leakage = %g, want %g", p2, pFull*0.25)
	}
}

func TestCalibrationIdlePower(t *testing.T) {
	// At zero load the 5x5 network burns only clock + leakage. The paper's
	// Fig. 6 No-DVFS curve starts around 50 mW.
	m := Default28nm()
	b := m.SteadyState(noc.RouterActivity{}, 25, 1_000_000, 1e9, 0.9)
	idleMW := b.Total() * 1e3
	if idleMW < 35 || idleMW > 65 {
		t.Errorf("idle power = %.1f mW, want ~50 mW", idleMW)
	}
}

func TestCalibrationLoadedPower(t *testing.T) {
	// Synthetic activity for uniform 0.4 flits/node/cycle on 5x5 over 1M
	// cycles: 10M flits injected, average 3.2 hops => 4.2 routers
	// traversed, 3.2 links. The paper's Fig. 6 No-DVFS curve reaches
	// ~230 mW at 0.4.
	m := Default28nm()
	const cycles = 1_000_000
	flits := int64(0.4 * 25 * cycles)
	perRouterVisits := 4.2
	a := noc.RouterActivity{
		BufWrites:      int64(float64(flits) * perRouterVisits),
		BufReads:       int64(float64(flits) * perRouterVisits),
		XbarTraversals: int64(float64(flits) * perRouterVisits),
		SAAllocs:       int64(float64(flits) * perRouterVisits),
		VCAllocs:       int64(float64(flits) * perRouterVisits / 20), // per packet
		LinkFlits:      int64(float64(flits) * 3.2),
		InjectFlits:    flits,
		EjectFlits:     flits,
	}
	b := m.SteadyState(a, 25, cycles, 1e9, 0.9)
	totalMW := b.Total() * 1e3
	if totalMW < 180 || totalMW > 280 {
		t.Errorf("0.4-load power = %.1f mW, want ~230 mW (Fig. 6 envelope)", totalMW)
	}
}

func TestDVFSPowerRatioMatchesPaper(t *testing.T) {
	// The paper reports ~2.2x power reduction of RMSD vs No-DVFS at 0.2
	// injection rate (Fig. 6). Reproduce the arithmetic with the model:
	// same activity per unit time, but RMSD runs at F=529 MHz, V=0.66 V.
	m := Default28nm()
	const cycles = 1_000_000
	flits := int64(0.2 * 25 * cycles)
	mk := func(scale float64) noc.RouterActivity {
		return noc.RouterActivity{
			BufWrites:      int64(float64(flits) * 4.2 * scale),
			BufReads:       int64(float64(flits) * 4.2 * scale),
			XbarTraversals: int64(float64(flits) * 4.2 * scale),
			SAAllocs:       int64(float64(flits) * 4.2 * scale),
			LinkFlits:      int64(float64(flits) * 3.2 * scale),
			InjectFlits:    int64(float64(flits) * scale),
			EjectFlits:     int64(float64(flits) * scale),
		}
	}
	full := m.SteadyState(mk(1), 25, cycles, 1e9, 0.9)
	// RMSD at the same wall time: fewer cycles at 529 MHz, same flits.
	fR := 529e6
	cyclesR := int64(float64(cycles) * fR / 1e9)
	rmsd := m.SteadyState(mk(1), 25, cyclesR, fR, 0.66)
	ratio := full.Total() / rmsd.Total()
	if ratio < 1.7 || ratio > 2.8 {
		t.Errorf("No-DVFS/RMSD power ratio = %.2f, paper reports ~2.2", ratio)
	}
}

func TestSteadyStateZeroCycles(t *testing.T) {
	m := Default28nm()
	b := m.SteadyState(noc.RouterActivity{}, 25, 0, 1e9, 0.9)
	if b.SwitchingW != 0 || b.ClockW != 0 {
		t.Error("zero-cycle steady state has dynamic power")
	}
	if b.LeakageW == 0 {
		t.Error("leakage should remain")
	}
}

func TestIntegrator(t *testing.T) {
	m := Default28nm()
	in, err := NewIntegrator(m, 25)
	if err != nil {
		t.Fatal(err)
	}
	if in.AvgPowerW() != 0 {
		t.Error("fresh integrator has nonzero power")
	}
	a := noc.RouterActivity{BufWrites: 1000, BufReads: 1000, XbarTraversals: 1000}
	in.Slice(a, 10000, 0.9, 10e-6)
	in.Slice(a, 10000, 0.56, 30e-6)
	if in.TimeS() != 40e-6 {
		t.Errorf("TimeS = %g, want 40 µs", in.TimeS())
	}
	wantE := m.ActivityEnergy(a, 0.9) + m.ClockEnergy(25, 10000, 0.9) + m.LeakagePower(25, 0.9)*10e-6 +
		m.ActivityEnergy(a, 0.56) + m.ClockEnergy(25, 10000, 0.56) + m.LeakagePower(25, 0.56)*30e-6
	if math.Abs(in.EnergyJ()-wantE)/wantE > 1e-12 {
		t.Errorf("EnergyJ = %g, want %g", in.EnergyJ(), wantE)
	}
	if got := in.AvgPowerW(); math.Abs(got-wantE/40e-6)/got > 1e-12 {
		t.Errorf("AvgPowerW = %g", got)
	}
}

func TestNewIntegratorValidation(t *testing.T) {
	if _, err := NewIntegrator(Default28nm(), 0); err == nil {
		t.Error("accepted zero routers")
	}
	bad := Default28nm()
	bad.VNom = -1
	if _, err := NewIntegrator(bad, 25); err == nil {
		t.Error("accepted invalid model")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{SwitchingW: 1, ClockW: 2, LeakageW: 3}
	if b.Total() != 6 {
		t.Errorf("Total = %g", b.Total())
	}
}

func TestLowerVoltageNeverRaisesPower(t *testing.T) {
	m := Default28nm()
	a := noc.RouterActivity{BufWrites: 5000, BufReads: 5000, XbarTraversals: 5000, LinkFlits: 2500}
	f := func(rawV uint16) bool {
		v := 0.56 + (0.9-0.56)*float64(rawV)/65535
		lower := m.ActivityEnergy(a, v) + m.LeakagePower(25, v)
		upper := m.ActivityEnergy(a, 0.9) + m.LeakagePower(25, 0.9)
		return lower <= upper+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
